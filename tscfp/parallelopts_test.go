package tscfp

import (
	"context"
	"strings"
	"testing"
)

func TestParallelOptionValidation(t *testing.T) {
	design := MustBenchmark("n100")
	if _, err := NewFlow(design, WithReplicas(-1)); err == nil {
		t.Fatal("negative replica count must fail")
	}
	if _, err := NewFlow(design, WithSpeculation(-3)); err == nil {
		t.Fatal("negative speculation width must fail")
	}
	if _, err := NewFlow(design, WithReplicas(0), WithSpeculation(0)); err != nil {
		t.Fatalf("serial spellings rejected: %v", err)
	}
}

// TestReplicasResultStats runs a small tempered+speculative flow and checks
// the repl_*/spec_* stats surface in the Result — and, just as importantly,
// that a serial run's JSON still carries none of the new keys, so existing
// consumers (and the golden fixtures) see byte-identical encodings.
func TestReplicasResultStats(t *testing.T) {
	design := MustBenchmark("n100")
	base := []Option{
		WithMode(TSCAware), WithIterations(100), WithGridN(12),
		WithActivitySamples(2), WithMaxDummyGroups(1), WithSeed(7),
	}
	par, err := Run(context.Background(), design,
		append(base, WithReplicas(2), WithSpeculation(2))...)
	if err != nil {
		t.Fatal(err)
	}
	s := par.Stats
	if s.ReplicaCount != 2 || s.SpecWorkers != 2 {
		t.Fatalf("parallel shape not reported: %+v", s)
	}
	if s.ReplicaSwapAttempts == 0 || s.SpecBatches == 0 {
		t.Fatalf("parallel anneal did no work: %+v", s)
	}
	if s.ReplicaBest < 0 || s.ReplicaBest >= 2 {
		t.Fatalf("best replica %d out of range", s.ReplicaBest)
	}
	data, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"repl_replicas": 2`) ||
		!strings.Contains(string(data), `"spec_workers": 2`) {
		t.Fatal("parallel stats missing from the JSON encoding")
	}

	serial, err := Run(context.Background(), design, base...)
	if err != nil {
		t.Fatal(err)
	}
	data, err = serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"repl_`) || strings.Contains(string(data), `"spec_`) {
		t.Fatal("serial result JSON grew repl_/spec_ keys; fixtures would break")
	}
}
