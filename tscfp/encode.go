package tscfp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/netlist"
)

// Result is the completed, serializable outcome of one flow run. All
// exported fields round-trip through JSON byte-identically (see WithSeed's
// determinism contract); the live internal handles behind Core() and
// FloorplanASCII do not survive a round trip.
type Result struct {
	Benchmark string `json:"benchmark"`
	Mode      Mode   `json:"mode"`
	Seed      int64  `json:"seed"`

	Dies     int     `json:"dies"`
	OutlineW float64 `json:"outline_w_um"`
	OutlineH float64 `json:"outline_h_um"`
	Legal    bool    `json:"legal"`

	Modules []PlacedModule  `json:"modules"`
	TSVs    []TSV           `json:"tsvs"`
	Volumes []VoltageVolume `json:"voltage_volumes"`

	Metrics Metrics `json:"metrics"`

	// Stats reports the run's computational effort: annealing-loop
	// evaluation counts (and how much work the incremental caches avoided)
	// plus the detailed verification solve.
	Stats RunStats `json:"stats"`

	// PowerMaps and TempMaps are row-major per-die grids: power in W per
	// cell, temperature in K.
	GridN     int         `json:"grid_n"`
	PowerMaps [][]float64 `json:"power_maps"`
	TempMaps  [][]float64 `json:"temp_maps"`

	raw *core.Result
}

// RunStats reports a run's computational effort. The counts are
// deterministic for a fixed seed and configuration (they follow the move
// sequence and acceptance decisions), but unlike the layout and metrics
// they describe evaluator/solver effort — zero the struct when diffing
// reports across seeds, budgets, or evaluator settings.
type RunStats struct {
	// Evals counts annealing-loop cost evaluations; IncrementalEvals of
	// those were served from the incremental caches, FullEvals rebuilt every
	// term from scratch.
	Evals            int `json:"evals"`
	FullEvals        int `json:"full_evals"`
	IncrementalEvals int `json:"incremental_evals"`
	// VoltRefreshes counts voltage-assignment re-runs (the VoltEvery
	// stride); VoltIncrementalRefreshes of those were served by the cached
	// incremental assigner, which reused VoltCandidatesReused per-module
	// candidate trees and regrew VoltCandidatesRegrown. VoltCrossChecks
	// counts incremental-vs-full assignment comparisons (0 unless
	// WithCostCrossCheck).
	VoltRefreshes            int `json:"volt_refreshes"`
	VoltIncrementalRefreshes int `json:"volt_incremental_refreshes"`
	VoltCandidatesReused     int `json:"volt_candidates_reused"`
	VoltCandidatesRegrown    int `json:"volt_candidates_regrown"`
	VoltCrossChecks          int `json:"volt_cross_checks"`
	// EntropyPatched/EntropyRebuilt count per-die spatial-entropy refreshes
	// served by patching the entropy cache vs rebuilt from scratch;
	// EntropyCrossChecks the patched-vs-full comparisons (0 unless
	// WithCostCrossCheck).
	EntropyPatched     int `json:"entropy_patched"`
	EntropyRebuilt     int `json:"entropy_rebuilt"`
	EntropyCrossChecks int `json:"entropy_cross_checks"`
	// AdjFullSweeps counts full adjacency re-sweeps inside the voltage
	// engine (rebuilds, index-disabled refreshes, and index updates that
	// fell back to the bulk sweep-plus-diff path at high churn);
	// AdjIncrementalUpdates the refreshes served by the index's per-module
	// probes (the index paths together changed AdjRowsChanged neighbour
	// rows); AdjCrossChecks the index-vs-sweep comparisons (0 unless
	// WithCostCrossCheck).
	AdjFullSweeps         int `json:"adj_full_sweeps"`
	AdjIncrementalUpdates int `json:"adj_incremental_updates"`
	AdjRowsChanged        int `json:"adj_rows_changed"`
	AdjCrossChecks        int `json:"adj_cross_checks"`
	// STAPatches counts per-move incremental patches applied across the two
	// timing caches (reference + delay-scaled), STARebuilds their full STA
	// passes (first use, voltage-scale changes, invalidations),
	// STAModulesRecomputed the per-patch Arrive/Depart module recomputes
	// (the caches' actual work, vs one full design walk per pass),
	// STACritRescans the patches that re-derived the critical max with a
	// flat scan, and STACrossChecks the cached-vs-full analysis comparisons
	// (0 unless WithCostCrossCheck).
	STAPatches           int `json:"sta_patches"`
	STARebuilds          int `json:"sta_rebuilds"`
	STAModulesRecomputed int `json:"sta_modules_recomputed"`
	STACritRescans       int `json:"sta_crit_rescans"`
	STACrossChecks       int `json:"sta_cross_checks"`
	// DiesRepacked/DiesReused count per-die skyline packings run vs skipped;
	// NetsRecomputed/NetsReused the per-net wirelength+delay refreshes;
	// ResponsesComputed/ResponsesReused the per-source thermal blurs.
	DiesRepacked      int `json:"dies_repacked"`
	DiesReused        int `json:"dies_reused"`
	NetsRecomputed    int `json:"nets_recomputed"`
	NetsReused        int `json:"nets_reused"`
	ResponsesComputed int `json:"responses_computed"`
	ResponsesReused   int `json:"responses_reused"`
	// SolverSweeps/SolverResidual/SolverConverged describe the detailed
	// thermal verification solve of the finalize stage.
	SolverSweeps    int     `json:"solver_sweeps"`
	SolverResidual  float64 `json:"solver_residual"`
	SolverConverged bool    `json:"solver_converged"`
	// ReplicaCount and the repl_* counters describe a WithReplicas run:
	// the chain count, the Metropolis temperature-swap attempts/accepts
	// across the ladder, and the index of the chain whose floorplan won.
	// All zero (and omitted) on the serial path, which keeps serial result
	// encodings byte-identical to earlier releases.
	ReplicaCount        int `json:"repl_replicas,omitempty"`
	ReplicaSwapAttempts int `json:"repl_swap_attempts,omitempty"`
	ReplicaSwapAccepts  int `json:"repl_swap_accepts,omitempty"`
	ReplicaBest         int `json:"repl_best,omitempty"`
	// SpecWorkers and the spec_* counters describe WithSpeculation:
	// the candidate width, batches evaluated, batches that committed an
	// acceptance, and candidate evaluations discarded. Omitted when zero.
	SpecWorkers   int `json:"spec_workers,omitempty"`
	SpecBatches   int `json:"spec_batches,omitempty"`
	SpecCommits   int `json:"spec_commits,omitempty"`
	SpecDiscarded int `json:"spec_discarded,omitempty"`
	// The pack_* churn counters describe the exact-diff repack contract
	// (WithChurnStats; omitted otherwise so default encodings stay
	// byte-identical). PackMoves counts moves evaluated through the
	// diff-producing packer, PackDieDiffs the per-die diffs they ran,
	// PackEarlyExits the diffs that stopped at skyline re-convergence
	// before the die's end, and PackReplayedPositions the sequence
	// positions actually re-placed. PackChangedModules totals the modules
	// whose placement a move really changed — the exact dirty set every
	// downstream cache consumes — with PackChangedP50/P95 the per-move
	// distribution's percentiles. STAGateTrips counts moves whose changed
	// nets overflowed the timing caches' patch budget (falling back to
	// invalidation), AdjBulkFallbacks adjacency-index updates that fell
	// back to the bulk sweep-plus-diff path; both fallbacks are rare under
	// the exact contract and were the norm under the old pessimistic
	// suffix diff.
	PackMoves             int `json:"pack_moves,omitempty"`
	PackDieDiffs          int `json:"pack_die_diffs,omitempty"`
	PackEarlyExits        int `json:"pack_early_exits,omitempty"`
	PackReplayedPositions int `json:"pack_replayed_positions,omitempty"`
	PackChangedModules    int `json:"pack_changed_modules,omitempty"`
	PackChangedP50        int `json:"pack_changed_p50,omitempty"`
	PackChangedP95        int `json:"pack_changed_p95,omitempty"`
	STAGateTrips          int `json:"sta_gate_trips,omitempty"`
	AdjBulkFallbacks      int `json:"adj_bulk_fallbacks,omitempty"`
}

// PlacedModule is one module of the final layout.
type PlacedModule struct {
	Name      string  `json:"name"`
	Die       int     `json:"die"`
	X         float64 `json:"x_um"`
	Y         float64 `json:"y_um"`
	W         float64 `json:"w_um"`
	H         float64 `json:"h_um"`
	PowerW    float64 `json:"power_w"`
	VoltageV  float64 `json:"voltage_v"`
	Sensitive bool    `json:"sensitive,omitempty"`
}

// TSV is one signal or dummy TSV (or island of Count vias).
type TSV struct {
	Kind  string  `json:"kind"`
	X     float64 `json:"x_um"`
	Y     float64 `json:"y_um"`
	Net   int     `json:"net"`
	Count int     `json:"count"`
	Gap   int     `json:"gap"`
}

// VoltageVolume is one voltage island of the assignment.
type VoltageVolume struct {
	Modules  []int   `json:"modules"`
	VoltageV float64 `json:"voltage_v"`
}

// DieMetrics bundles the per-die leakage measurements.
type DieMetrics struct {
	// R is the power-temperature correlation (Eq. 1, detailed analysis).
	R float64 `json:"r"`
	// S is the spatial entropy of the power map (Eq. 3).
	S float64 `json:"s"`
	// SVF is the side-channel vulnerability factor (0 when post-processing
	// is disabled).
	SVF float64 `json:"svf"`
	// MeanStability is the mean absolute per-bin stability (Eq. 2).
	MeanStability float64 `json:"mean_stability"`
}

// Metrics mirrors one column pair of the paper's Table 2.
type Metrics struct {
	PerDie []DieMetrics `json:"per_die"`

	S1 float64 `json:"s1"`
	S2 float64 `json:"s2"`
	R1 float64 `json:"r1"`
	R2 float64 `json:"r2"`

	PowerW         float64 `json:"power_w"`
	CriticalNS     float64 `json:"critical_ns"`
	WirelengthM    float64 `json:"wirelength_m"`
	PeakTempK      float64 `json:"peak_temp_k"`
	SignalTSVs     int     `json:"signal_tsvs"`
	DummyTSVs      int     `json:"dummy_tsvs"`
	VoltageVolumes int     `json:"voltage_volumes"`
	RuntimeSec     float64 `json:"runtime_sec"`

	PostCorrelationBefore float64 `json:"post_correlation_before"`
	PostCorrelationAfter  float64 `json:"post_correlation_after"`

	SVF1           float64 `json:"svf1"`
	SVF2           float64 `json:"svf2"`
	MeanStability1 float64 `json:"mean_stability1"`
	MeanStability2 float64 `json:"mean_stability2"`
}

// JSON returns the indented JSON encoding of the result. Encoding is
// deterministic: the same run (same design, seed, options) yields
// byte-identical output apart from Metrics.RuntimeSec — zero that field
// first when diffing or hashing reports.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the result's JSON encoding to w.
func (r *Result) WriteJSON(w io.Writer) error {
	data, err := r.JSON()
	if err != nil {
		return fmt.Errorf("tscfp: encode result: %w", err)
	}
	_, err = w.Write(data)
	return err
}

// WriteJSONFile writes the result's JSON encoding to path.
func (r *Result) WriteJSONFile(path string) error {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadResult decodes a Result previously written with WriteJSON and
// validates its structural consistency.
func ReadResult(r io.Reader) (*Result, error) {
	var res Result
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, fmt.Errorf("tscfp: decode result: %w", err)
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	return &res, nil
}

// ReadResultFile is ReadResult over a file.
func ReadResultFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadResult(f)
}

// Validate checks the result's structural consistency (map sizes, die
// indices, metric aliases).
func (r *Result) Validate() error {
	if r.Dies < 1 {
		return fmt.Errorf("tscfp: result has bad die count %d", r.Dies)
	}
	if r.GridN < 1 {
		return fmt.Errorf("tscfp: result has bad grid resolution %d", r.GridN)
	}
	if len(r.PowerMaps) != r.Dies || len(r.TempMaps) != r.Dies {
		return fmt.Errorf("tscfp: result has %d/%d maps for %d dies",
			len(r.PowerMaps), len(r.TempMaps), r.Dies)
	}
	want := r.GridN * r.GridN
	for d := 0; d < r.Dies; d++ {
		if len(r.PowerMaps[d]) != want || len(r.TempMaps[d]) != want {
			return fmt.Errorf("tscfp: die %d maps sized %d/%d, want %d",
				d, len(r.PowerMaps[d]), len(r.TempMaps[d]), want)
		}
	}
	for _, m := range r.Modules {
		if m.Die < 0 || m.Die >= r.Dies {
			return fmt.Errorf("tscfp: module %s placed on die %d of %d", m.Name, m.Die, r.Dies)
		}
	}
	if len(r.Metrics.PerDie) != r.Dies {
		return fmt.Errorf("tscfp: metrics cover %d dies, want %d", len(r.Metrics.PerDie), r.Dies)
	}
	return nil
}

// designJSON is the on-disk schema of a Design.
type designJSON struct {
	Name      string         `json:"name"`
	Dies      int            `json:"dies"`
	OutlineW  float64        `json:"outline_w_um"`
	OutlineH  float64        `json:"outline_h_um"`
	Modules   []moduleJSON   `json:"modules"`
	Nets      []netJSON      `json:"nets"`
	Terminals []terminalJSON `json:"terminals"`
}

type moduleJSON struct {
	Name           string  `json:"name"`
	Kind           string  `json:"kind"`
	W              float64 `json:"w_um"`
	H              float64 `json:"h_um"`
	MinAspect      float64 `json:"min_aspect,omitempty"`
	MaxAspect      float64 `json:"max_aspect,omitempty"`
	PowerW         float64 `json:"power_w"`
	IntrinsicDelay float64 `json:"intrinsic_delay_ns"`
	Sensitive      bool    `json:"sensitive,omitempty"`
}

type netJSON struct {
	Name      string `json:"name"`
	Modules   []int  `json:"modules"`
	Terminals []int  `json:"terminals,omitempty"`
}

type terminalJSON struct {
	Name string  `json:"name"`
	X    float64 `json:"x_um"`
	Y    float64 `json:"y_um"`
}

// MarshalJSON encodes the design's full netlist, so a decoded Design is
// flow-equivalent to the original.
func (d *Design) MarshalJSON() ([]byte, error) {
	out := designJSON{
		Name:     d.d.Name,
		Dies:     d.d.Dies,
		OutlineW: d.d.OutlineW,
		OutlineH: d.d.OutlineH,
	}
	for _, m := range d.d.Modules {
		out.Modules = append(out.Modules, moduleJSON{
			Name:           m.Name,
			Kind:           m.Kind.String(),
			W:              m.W,
			H:              m.H,
			MinAspect:      m.MinAspect,
			MaxAspect:      m.MaxAspect,
			PowerW:         m.Power,
			IntrinsicDelay: m.IntrinsicDelay,
			Sensitive:      m.Sensitive,
		})
	}
	for _, n := range d.d.Nets {
		out.Nets = append(out.Nets, netJSON{
			Name:      n.Name,
			Modules:   append([]int(nil), n.Modules...),
			Terminals: append([]int(nil), n.Terminals...),
		})
	}
	for _, t := range d.d.Terminals {
		out.Terminals = append(out.Terminals, terminalJSON{Name: t.Name, X: t.X, Y: t.Y})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a design written by MarshalJSON.
func (d *Design) UnmarshalJSON(data []byte) error {
	var in designJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("tscfp: decode design: %w", err)
	}
	des := &netlist.Design{
		Name:     in.Name,
		Dies:     in.Dies,
		OutlineW: in.OutlineW,
		OutlineH: in.OutlineH,
	}
	for _, m := range in.Modules {
		kind := netlist.Soft
		switch m.Kind {
		case "hard":
			kind = netlist.Hard
		case "soft", "":
		default:
			return fmt.Errorf("tscfp: module %s has unknown kind %q", m.Name, m.Kind)
		}
		des.Modules = append(des.Modules, &netlist.Module{
			Name:           m.Name,
			Kind:           kind,
			W:              m.W,
			H:              m.H,
			MinAspect:      m.MinAspect,
			MaxAspect:      m.MaxAspect,
			Power:          m.PowerW,
			IntrinsicDelay: m.IntrinsicDelay,
			Sensitive:      m.Sensitive,
		})
	}
	for _, n := range in.Nets {
		des.Nets = append(des.Nets, &netlist.Net{
			Name:      n.Name,
			Modules:   append([]int(nil), n.Modules...),
			Terminals: append([]int(nil), n.Terminals...),
		})
	}
	for _, t := range in.Terminals {
		des.Terminals = append(des.Terminals, &netlist.Terminal{Name: t.Name, X: t.X, Y: t.Y})
	}
	if err := des.Validate(); err != nil {
		return fmt.Errorf("tscfp: decoded design invalid: %w", err)
	}
	d.d = des
	return nil
}
