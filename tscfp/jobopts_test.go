package tscfp

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestEventJSONRoundTrip pins the Event wire schema: progress events cross
// SSE verbatim, so the JSON encoding must round-trip losslessly and keep
// its field names stable.
func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Stage: StageAnneal, Done: 120, Total: 3000, Cost: 42.5},
		{Stage: StageFinalize},
		{Stage: StageSampling, Done: 3, Total: 100},
		{Stage: StagePostProcess, Done: 1, Total: 64, Cost: -0.37},
		{Stage: StageDone},
	}
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != ev {
			t.Fatalf("round trip changed %+v into %+v (wire %s)", ev, back, data)
		}
	}

	data, _ := json.Marshal(Event{Stage: StageAnneal, Done: 1, Total: 2, Cost: 3})
	want := `{"stage":"anneal","done":1,"total":2,"cost":3}`
	if string(data) != want {
		t.Fatalf("wire schema = %s, want %s", data, want)
	}
}

// TestRunOptionsCanonical expands CLI spellings and rejects unknown ones.
func TestRunOptionsCanonical(t *testing.T) {
	c, err := RunOptions{Mode: "tsc", PostCriterion: "all-dies"}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode != string(TSCAware) || c.PostCriterion != string(AllDies) {
		t.Fatalf("canonical = %+v", c)
	}
	if _, err := (RunOptions{Mode: "fast"}).Canonical(); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := (RunOptions{PostCriterion: "top"}).Canonical(); err == nil {
		t.Fatal("unknown criterion accepted")
	}

	// Different spellings of the same configuration canonicalize to
	// identical JSON — the property content addressing relies on.
	a, _ := RunOptions{Mode: "tsc", Seed: 7}.Canonical()
	b, _ := RunOptions{Mode: "tsc-aware", Seed: 7}.Canonical()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("canonical JSON differs: %s vs %s", aj, bj)
	}
}

// TestRunOptionsZeroIsDefault: decoding `{}` configures exactly the same
// flow as passing no options at all.
func TestRunOptionsZeroIsDefault(t *testing.T) {
	var o RunOptions
	if err := json.Unmarshal([]byte(`{}`), &o); err != nil {
		t.Fatal(err)
	}
	opts, err := o.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 0 {
		t.Fatalf("zero RunOptions produced %d options, want 0", len(opts))
	}
}

// TestRunOptionsEquivalentToDirectOptions runs the same tiny flow once via
// RunOptions and once via direct functional options and expects identical
// Results (the serving layer depends on this equivalence).
func TestRunOptionsEquivalentToDirectOptions(t *testing.T) {
	design := MustBenchmark("n100")
	decoded := RunOptions{
		Mode: "tsc", Seed: 42, Iterations: 80, GridN: 12,
		ActivitySamples: 2, MaxDummyGroups: 1,
	}
	opts, err := decoded.Options()
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := Run(context.Background(), design, opts...)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(context.Background(), design,
		WithMode(TSCAware), WithSeed(42), WithIterations(80), WithGridN(12),
		WithActivitySamples(2), WithMaxDummyGroups(1))
	if err != nil {
		t.Fatal(err)
	}
	viaJSON.Metrics.RuntimeSec, direct.Metrics.RuntimeSec = 0, 0
	a, _ := viaJSON.JSON()
	b, _ := direct.JSON()
	if string(a) != string(b) {
		t.Fatalf("RunOptions and direct options diverge (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRunOptionsReplicaCanonical pins the dedupe-key behaviour of the
// parallel-anneal knobs: 1 and 0 select the same serial path and must
// canonicalize to identical JSON (so tscfpd content addresses them to the
// same artifact), explicit counts survive canonicalization, and negatives
// are rejected up front — before a dedupe key could be derived from them.
func TestRunOptionsReplicaCanonical(t *testing.T) {
	zero, err := RunOptions{Seed: 7}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunOptions{Seed: 7, Replicas: 1, Speculation: 1}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	zj, _ := json.Marshal(zero)
	oj, _ := json.Marshal(one)
	if string(zj) != string(oj) {
		t.Fatalf("replicas=1 and replicas unset canonicalize differently: %s vs %s", oj, zj)
	}

	c, err := RunOptions{Replicas: 4, Speculation: 2}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Replicas != 4 || c.Speculation != 2 {
		t.Fatalf("explicit parallel shape not preserved: %+v", c)
	}
	opts, err := RunOptions{Replicas: 4, Speculation: 2}.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 2 {
		t.Fatalf("replica+speculation lowered to %d options, want 2", len(opts))
	}
	if _, err := NewFlow(MustBenchmark("n100"), opts...); err != nil {
		t.Fatal(err)
	}
	// Normalized-away serial spellings lower to no options at all.
	opts, err = RunOptions{Replicas: 1, Speculation: 1}.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 0 {
		t.Fatalf("serial spellings lowered to %d options, want 0", len(opts))
	}

	if _, err := (RunOptions{Replicas: -1}).Canonical(); err == nil {
		t.Fatal("negative replica count accepted")
	}
	if _, err := (RunOptions{Speculation: -2}).Canonical(); err == nil {
		t.Fatal("negative speculation width accepted")
	}
}

// TestRunOptionsAllKnobs checks every field lowers into an option that
// NewFlow accepts, and that invalid ranges still surface from NewFlow.
func TestRunOptionsAllKnobs(t *testing.T) {
	pp := true
	par := 2
	w := DefaultWeights(TSCAware)
	full := RunOptions{
		Mode: "pa", Seed: 3, Iterations: 10, GridN: 8,
		ActivitySamples: 2, ActivitySigma: 0.2,
		PostProcess: &pp, PostCriterion: "bottom-die",
		ProtectedModules: []int{0, 1}, MaxDummyGroups: 2, DummyViasPerGroup: 4,
		VoltEvery: 5, VoltTargetFactor: 1.2,
		Weights: &w, Parallelism: &par,
		Replicas: 2, Speculation: 3,
	}
	opts, err := full.Options()
	if err != nil {
		t.Fatal(err)
	}
	want := reflect.TypeOf(full).NumField()
	if len(opts) != want {
		t.Fatalf("%d options from %d fields", len(opts), want)
	}
	if _, err := NewFlow(MustBenchmark("n100"), opts...); err != nil {
		t.Fatal(err)
	}

	bad := RunOptions{Iterations: -5}
	opts, err = bad.Options()
	if err != nil {
		t.Fatal(err) // spelling is fine; the range error belongs to NewFlow
	}
	if _, err := NewFlow(MustBenchmark("n100"), opts...); err == nil {
		t.Fatal("negative iterations accepted by NewFlow")
	}
}
