// Integration tests: end-to-end flows across modules, at reduced scale so
// `go test ./...` stays fast. The per-module unit tests live next to their
// packages; these verify the seams.
package repro

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/noiseinject"
	"repro/internal/report"
	"repro/internal/thermal"
	"repro/internal/timing"
	"repro/internal/tsv"
)

var (
	integOnce sync.Once
	integRes  map[core.Mode]*core.Result
)

// integResults floorplans n100 once per mode at test scale.
func integResults(t *testing.T) map[core.Mode]*core.Result {
	t.Helper()
	integOnce.Do(func() {
		integRes = map[core.Mode]*core.Result{}
		des := bench.MustGenerate("n100")
		for _, mode := range []core.Mode{core.PowerAware, core.TSCAware} {
			res, err := core.Run(des, core.Config{
				Mode: mode, GridN: 16, SAIterations: 200,
				ActivitySamples: 10, Seed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			integRes[mode] = res
		}
	})
	return integRes
}

// TestFlowProducesConsistentArtifacts checks that every artifact of a run
// agrees with every other: layout vs TSV plan vs assignment vs maps.
func TestFlowProducesConsistentArtifacts(t *testing.T) {
	for mode, res := range integResults(t) {
		// Every cross-die net has at least one signal TSV entry.
		crossNets := res.Layout.CrossDieNets()
		nets := map[int]bool{}
		for _, v := range res.TSVs.TSVs {
			if v.Kind == tsv.Signal {
				nets[v.Net] = true
			}
		}
		for _, ni := range crossNets {
			if !nets[ni] {
				t.Fatalf("%v: cross-die net %d has no TSV", mode, ni)
			}
		}
		// Power maps match the assignment-scaled module powers. Power
		// rasterized outside the fixed outline is clipped, so exact
		// conservation holds only for legal layouts; illegal ones can only
		// underreport.
		total := 0.0
		for mi, m := range res.Design.Modules {
			total += m.Power * res.Assignment.PowerScale[mi]
		}
		mapped := res.PowerMaps[0].Sum() + res.PowerMaps[1].Sum()
		if res.Layout.Legal() {
			if math.Abs(mapped-total) > 1e-6*total {
				t.Fatalf("%v: maps carry %v W, assignment says %v W", mode, mapped, total)
			}
		} else if mapped > total+1e-6*total {
			t.Fatalf("%v: maps carry more power (%v) than assigned (%v)", mode, mapped, total)
		}
		// Metrics aliases agree with PerDie.
		if res.Metrics.R1 != res.Metrics.PerDie[0].R {
			t.Fatalf("%v: R1 alias out of sync", mode)
		}
	}
}

// TestFlowMetricsMatchIndependentRecomputation recomputes r and S from the
// result's own maps and compares with the reported metrics.
func TestFlowMetricsMatchIndependentRecomputation(t *testing.T) {
	res := integResults(t)[core.TSCAware]
	r1 := leakage.Pearson(res.PowerMaps[0], res.TempMaps[0])
	if math.Abs(r1-res.Metrics.R1) > 1e-9 {
		t.Fatalf("r1 %v vs reported %v", r1, res.Metrics.R1)
	}
	s1 := leakage.SpatialEntropy(res.PowerMaps[0], leakage.EntropyOptions{})
	if math.Abs(s1-res.Metrics.S1) > 1e-9 {
		t.Fatalf("S1 %v vs reported %v", s1, res.Metrics.S1)
	}
}

// TestFlowTimingHonoured re-runs STA with the assignment's delay scales and
// checks the repaired critical delay is reported faithfully.
func TestFlowTimingHonoured(t *testing.T) {
	res := integResults(t)[core.PowerAware]
	sta := timing.Analyze(res.Layout, res.Assignment.DelayScale, timing.DefaultParams())
	if math.Abs(sta.Critical-res.Metrics.CriticalNS) > 1e-9 {
		t.Fatalf("critical %v vs reported %v", sta.Critical, res.Metrics.CriticalNS)
	}
}

// TestFlowVoltageVolumesPartition checks the assignment is a partition and
// its power bookkeeping matches.
func TestFlowVoltageVolumesPartition(t *testing.T) {
	res := integResults(t)[core.TSCAware]
	seen := make([]bool, len(res.Design.Modules))
	for _, v := range res.Assignment.Volumes {
		for _, m := range v.Modules {
			if seen[m] {
				t.Fatalf("module %d in two volumes", m)
			}
			seen[m] = true
		}
	}
	for m, ok := range seen {
		if !ok {
			t.Fatalf("module %d unassigned", m)
		}
	}
	if math.Abs(res.Assignment.TotalPower-res.Metrics.PowerW) > 1e-9 {
		t.Fatal("power bookkeeping mismatch")
	}
}

// TestReportRoundTripFromFlow serializes a flow result and reloads it.
func TestReportRoundTripFromFlow(t *testing.T) {
	res := integResults(t)[core.TSCAware]
	rep := report.FromResult(res, "TSC-aware")
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "res.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := report.ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics.R1 != res.Metrics.R1 || len(back.Volumes) != len(res.Assignment.Volumes) {
		t.Fatal("round trip lost data")
	}
}

// TestAttackPipelineOnFlowResult mounts every attack on a flow result.
func TestAttackPipelineOnFlowResult(t *testing.T) {
	res := integResults(t)[core.PowerAware]
	dev := attack.NewDevice(res, attack.Sensors{N: 8, NoiseK: 0.02}, 1)
	st := attack.LocalizeAll(dev, []int{0, 1}, attack.LocalizeOptions{})
	if len(st.Results) != 2 {
		t.Fatal("localization results")
	}
	ch := attack.Characterize(dev, []int{0, 1}, 3, rand.New(rand.NewSource(2)))
	if ch.R2 < 0 || ch.R2 > 1 {
		t.Fatalf("R2 %v", ch.R2)
	}
	inv := attack.InvertDevice(dev, attack.InversionOptions{Iterations: 60})
	if math.IsNaN(inv.MeanFidelity()) {
		t.Fatal("inversion not scored")
	}
	dev.Reset()
}

// TestNoiseInjectionOnFlowResult checks the prior-art baseline integrates.
func TestNoiseInjectionOnFlowResult(t *testing.T) {
	res := integResults(t)[core.PowerAware]
	rs := noiseinject.Controller{}.Sweep(res, []float64{0, 0.5})
	if rs[1].PeakTempK <= rs[0].PeakTempK {
		t.Fatal("injection must heat the stack")
	}
}

// TestThreeDieGapIsolation verifies per-gap TSV maps act on the right
// interfaces: copper in gap 1 must improve die1<->die2 coupling but leave
// die0's peak essentially unchanged relative to copper in gap 0.
func TestThreeDieGapIsolation(t *testing.T) {
	const n = 16
	mk := func(gap int) float64 {
		cfg := thermal.DefaultConfig(n, n, 4000, 4000, 3)
		s := thermal.NewStack(cfg)
		pw := geom.NewGrid(n, n)
		pw.Fill(8.0 / float64(n*n))
		s.SetDiePower(0, pw)
		cu := geom.NewGrid(n, n)
		cu.Fill(0.3)
		s.SetTSVGapMap(gap, cu)
		sol, _ := s.SolveSteady(nil, thermal.SolverOpts{})
		return sol.DieTemp(0).Max()
	}
	peakGap0 := mk(0)
	peakGap1 := mk(1)
	// Heat is injected into die 0; opening gap 0 shortens its path to the
	// sink much more than opening gap 1 (which only helps beyond die 1).
	if peakGap0 >= peakGap1 {
		t.Fatalf("gap-0 TSVs should cool die 0 more: %v vs %v", peakGap0, peakGap1)
	}
}
